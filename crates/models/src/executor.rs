//! End-to-end model execution under the seven schemes of Fig. 8:
//! CPU, iCPU, PEI, nCHO, eCHO, STP* (device-level only), STP (best level
//! per GEMM).
//!
//! Per the paper's methodology (§V-B): "GEMMs can be executed by either the
//! CPU, device-level (PIM_DV), or BG-level PIMs (PIM_BG); the best
//! performing option is chosen for each GEMM. All other operations …
//! are executed on the CPU (CPU_Other)." Repeated layer shapes are memoized
//! — a model has a handful of distinct GEMMs, which is also why coarse
//! per-GEMM selection works in practice.

use crate::layers::{ModelGraph, Op};
use serde::{Deserialize, Serialize};
use rustc_hash::FxHashMap;
use stepstone_addr::PimLevel;
use stepstone_core::{
    simulate_gemm, simulate_gemm_opt, simulate_ncho, simulate_pei, CpuModel, GemmSpec,
    IdealCpuModel, SimOptions, SystemConfig,
};

/// The execution schemes compared in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    Cpu,
    ICpu,
    Pei,
    Ncho,
    Echo,
    /// Low-power StepStone: device-level PIMs only (paper's `STP*`).
    StpStar,
    /// Full StepStone: best level per GEMM (paper's `STP`).
    Stp,
}

impl Scheme {
    pub const ALL: [Scheme; 7] =
        [Scheme::Cpu, Scheme::ICpu, Scheme::Pei, Scheme::Ncho, Scheme::Echo, Scheme::StpStar, Scheme::Stp];

    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Cpu => "CPU",
            Scheme::ICpu => "iCPU",
            Scheme::Pei => "PEI",
            Scheme::Ncho => "nCHO",
            Scheme::Echo => "eCHO",
            Scheme::StpStar => "STP*",
            Scheme::Stp => "STP",
        }
    }
}

/// Where a GEMM's cycles were spent (the Fig. 8 stack categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bucket {
    PimDv,
    PimBg,
    CpuGemm,
    CpuOther,
}

impl Bucket {
    pub const ALL: [Bucket; 4] = [Bucket::PimDv, Bucket::PimBg, Bucket::CpuGemm, Bucket::CpuOther];

    pub fn label(&self) -> &'static str {
        match self {
            Bucket::PimDv => "PIM_DV",
            Bucket::PimBg => "PIM_BG",
            Bucket::CpuGemm => "CPU_GEMM",
            Bucket::CpuOther => "CPU_Other",
        }
    }
}

/// End-to-end result of one (model, scheme) run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    pub model: String,
    pub scheme: String,
    pub total_cycles: u64,
    /// Cycles per Fig. 8 stack category.
    pub bucket_cycles: [u64; 4],
    /// How many GEMMs ran on each backend.
    pub gemm_backend_counts: [usize; 4],
}

impl ModelReport {
    pub fn bucket(&self, b: Bucket) -> u64 {
        self.bucket_cycles[Bucket::ALL.iter().position(|x| *x == b).expect("bucket")]
    }

    fn add(&mut self, b: Bucket, cycles: u64, is_gemm: bool) {
        let i = Bucket::ALL.iter().position(|x| *x == b).expect("bucket");
        self.bucket_cycles[i] += cycles;
        self.total_cycles += cycles;
        if is_gemm {
            self.gemm_backend_counts[i] += 1;
        }
    }
}

/// CPU cost of a non-GEMM operator: bandwidth-bound streaming plus vector
/// compute plus a fixed kernel-dispatch overhead.
fn cpu_other_cycles(bytes: u64, flops: u64) -> u64 {
    let mem = bytes as f64 / 20.0;
    let comp = flops as f64 / 2000.0;
    (mem.max(comp) + 2_000.0) as u64
}

/// The end-to-end executor with per-shape memoization.
pub struct ModelExecutor {
    pub sys: SystemConfig,
    pub cpu: CpuModel,
    pub icpu: IdealCpuModel,
    cache: FxHashMap<(GemmSpec, Scheme), (u64, Bucket)>,
}

impl ModelExecutor {
    pub fn new(sys: SystemConfig) -> Self {
        Self { sys, cpu: CpuModel::default(), icpu: IdealCpuModel::default(), cache: FxHashMap::default() }
    }

    /// Execute one GEMM under a scheme; returns (cycles, bucket).
    fn gemm_cycles(&mut self, spec: GemmSpec, scheme: Scheme) -> (u64, Bucket) {
        if let Some(&hit) = self.cache.get(&(spec, scheme)) {
            return hit;
        }
        let cpu = (self.cpu.cycles(&spec), Bucket::CpuGemm);
        let result = match scheme {
            Scheme::Cpu => cpu,
            Scheme::ICpu => (self.icpu.cycles(&spec), Bucket::CpuGemm),
            Scheme::StpStar => {
                let dv = simulate_gemm(&self.sys, &spec, PimLevel::Device).total;
                pick(&[(dv, Bucket::PimDv), cpu])
            }
            Scheme::Stp => {
                let dv = simulate_gemm(&self.sys, &spec, PimLevel::Device).total;
                let bg = simulate_gemm(&self.sys, &spec, PimLevel::BankGroup).total;
                pick(&[(bg, Bucket::PimBg), (dv, Bucket::PimDv), cpu])
            }
            Scheme::Echo => {
                let dv = simulate_gemm_opt(
                    &self.sys,
                    &spec,
                    &SimOptions::echo(PimLevel::Device),
                    None,
                )
                .total;
                let bg = simulate_gemm_opt(
                    &self.sys,
                    &spec,
                    &SimOptions::echo(PimLevel::BankGroup),
                    None,
                )
                .total;
                pick(&[(bg, Bucket::PimBg), (dv, Bucket::PimDv), cpu])
            }
            Scheme::Ncho => {
                let dv = simulate_ncho(&self.sys, &spec, PimLevel::Device, None).total;
                let bg = simulate_ncho(&self.sys, &spec, PimLevel::BankGroup, None).total;
                pick(&[(bg, Bucket::PimBg), (dv, Bucket::PimDv), cpu])
            }
            Scheme::Pei => {
                let dv = simulate_pei(&self.sys, &spec, PimLevel::Device, None).total;
                let bg = simulate_pei(&self.sys, &spec, PimLevel::BankGroup, None).total;
                pick(&[(bg, Bucket::PimBg), (dv, Bucket::PimDv), cpu])
            }
        };
        self.cache.insert((spec, scheme), result);
        result
    }

    /// Execute a whole model graph under a scheme.
    pub fn run(&mut self, model: &ModelGraph, scheme: Scheme) -> ModelReport {
        let mut report = ModelReport {
            model: model.name.to_string(),
            scheme: scheme.label().to_string(),
            ..Default::default()
        };
        for op in &model.ops {
            match op {
                Op::Gemm(spec) => {
                    let (cycles, bucket) = self.gemm_cycles(*spec, scheme);
                    report.add(bucket, cycles, true);
                }
                Op::CpuOp { bytes, flops, .. } => {
                    report.add(Bucket::CpuOther, cpu_other_cycles(*bytes, *flops), false);
                }
            }
        }
        report
    }
}

fn pick(cands: &[(u64, Bucket)]) -> (u64, Bucket) {
    *cands.iter().min_by_key(|(c, _)| *c).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{bert, dlrm, xlm};

    #[test]
    fn stp_beats_cpu_on_every_model() {
        let mut ex = ModelExecutor::new(SystemConfig::default());
        for model in [dlrm(4), bert(4)] {
            let cpu = ex.run(&model, Scheme::Cpu);
            let stp = ex.run(&model, Scheme::Stp);
            assert!(
                stp.total_cycles * 2 < cpu.total_cycles,
                "{}: stp={} cpu={}",
                model.name,
                stp.total_cycles,
                cpu.total_cycles
            );
        }
    }

    #[test]
    fn xlm_uses_both_pim_levels() {
        // §V-B: "XLM utilizes BG-level PIMs when N is small and, later,
        // switches to DV-level PIMs".
        let mut ex = ModelExecutor::new(SystemConfig::default());
        let r = ex.run(&xlm(4), Scheme::Stp);
        assert!(r.bucket(Bucket::PimBg) > 0, "{r:?}");
        // At growing sequence lengths the selection may stay BG in our
        // calibration; at minimum both levels must have been *evaluated*
        // and BG chosen for the small-N steps.
        assert!(r.gemm_backend_counts[1] > 0);
    }

    #[test]
    fn scheme_ordering_matches_fig8() {
        // STP ≤ eCHO ≤ nCHO and STP ≤ PEI on a GEMM-dominated model.
        let mut ex = ModelExecutor::new(SystemConfig::default());
        let model = dlrm(4);
        let stp = ex.run(&model, Scheme::Stp).total_cycles;
        let echo = ex.run(&model, Scheme::Echo).total_cycles;
        let ncho = ex.run(&model, Scheme::Ncho).total_cycles;
        let pei = ex.run(&model, Scheme::Pei).total_cycles;
        assert!(stp <= echo, "stp={stp} echo={echo}");
        assert!(echo <= ncho, "echo={echo} ncho={ncho}");
        assert!(stp < pei, "stp={stp} pei={pei}");
    }

    #[test]
    fn memoization_dedupes_repeated_blocks() {
        let mut ex = ModelExecutor::new(SystemConfig::default());
        let model = bert(4);
        let _ = ex.run(&model, Scheme::Stp);
        // BERT has only 3 distinct GEMM shapes.
        assert_eq!(ex.cache.len(), 3);
    }
}
