//! End-to-end model execution under the seven schemes of Fig. 8:
//! CPU, iCPU, PEI, nCHO, eCHO, STP* (device-level only), STP (best level
//! per GEMM).
//!
//! Per the paper's methodology (§V-B): "GEMMs can be executed by either the
//! CPU, device-level (PIM_DV), or BG-level PIMs (PIM_BG); the best
//! performing option is chosen for each GEMM. All other operations …
//! are executed on the CPU (CPU_Other)." Repeated layer shapes are memoized
//! — a model has a handful of distinct GEMMs, which is also why coarse
//! per-GEMM selection works in practice.

use crate::layers::{ModelGraph, Op};
use serde::{Deserialize, Serialize};
use rustc_hash::FxHashMap;
use std::sync::Arc;
use stepstone_addr::PimLevel;
use stepstone_core::{
    choose_backend, options_for, simulate_gemm_session, simulate_ncho, simulate_pei, Backend,
    CpuModel, GemmSpec, IdealCpuModel, SessionCache, SimOptions, SystemConfig,
};

/// The execution schemes compared in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    Cpu,
    ICpu,
    Pei,
    Ncho,
    Echo,
    /// Low-power StepStone: device-level PIMs only (paper's `STP*`).
    StpStar,
    /// Full StepStone: best level per GEMM (paper's `STP`).
    Stp,
}

impl Scheme {
    pub const ALL: [Scheme; 7] =
        [Scheme::Cpu, Scheme::ICpu, Scheme::Pei, Scheme::Ncho, Scheme::Echo, Scheme::StpStar, Scheme::Stp];

    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Cpu => "CPU",
            Scheme::ICpu => "iCPU",
            Scheme::Pei => "PEI",
            Scheme::Ncho => "nCHO",
            Scheme::Echo => "eCHO",
            Scheme::StpStar => "STP*",
            Scheme::Stp => "STP",
        }
    }
}

/// Where a GEMM's cycles were spent (the Fig. 8 stack categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bucket {
    PimDv,
    PimBg,
    CpuGemm,
    CpuOther,
}

impl Bucket {
    pub const ALL: [Bucket; 4] = [Bucket::PimDv, Bucket::PimBg, Bucket::CpuGemm, Bucket::CpuOther];

    pub fn label(&self) -> &'static str {
        match self {
            Bucket::PimDv => "PIM_DV",
            Bucket::PimBg => "PIM_BG",
            Bucket::CpuGemm => "CPU_GEMM",
            Bucket::CpuOther => "CPU_Other",
        }
    }
}

/// End-to-end result of one (model, scheme) run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    pub model: String,
    pub scheme: String,
    pub total_cycles: u64,
    /// Cycles per Fig. 8 stack category.
    pub bucket_cycles: [u64; 4],
    /// How many GEMMs ran on each backend.
    pub gemm_backend_counts: [usize; 4],
}

impl ModelReport {
    pub fn bucket(&self, b: Bucket) -> u64 {
        self.bucket_cycles[Bucket::ALL.iter().position(|x| *x == b).expect("bucket")]
    }

    fn add(&mut self, b: Bucket, cycles: u64, is_gemm: bool) {
        let i = Bucket::ALL.iter().position(|x| *x == b).expect("bucket");
        self.bucket_cycles[i] += cycles;
        self.total_cycles += cycles;
        if is_gemm {
            self.gemm_backend_counts[i] += 1;
        }
    }
}

/// CPU cost of a non-GEMM operator: bandwidth-bound streaming plus vector
/// compute plus a fixed kernel-dispatch overhead.
fn cpu_other_cycles(bytes: u64, flops: u64) -> u64 {
    let mem = bytes as f64 / 20.0;
    let comp = flops as f64 / 2000.0;
    (mem.max(comp) + 2_000.0) as u64
}

/// What the serving layer's per-GEMM backend selection decided and what it
/// costs (see [`ModelExecutor::selected_cost`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectedCost {
    pub backend: Backend,
    pub cycles: u64,
    /// DRAM data-bus busy cycles of the PIM simulation (0 for CPU-routed
    /// GEMMs) — the serving report's channel-utilization numerator.
    pub data_cycles: u64,
}

/// Cost of one full model pass split by execution side — the serving
/// loop's batch service time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PassCost {
    pub pim_cycles: u64,
    pub cpu_cycles: u64,
    pub data_cycles: u64,
    pub pim_gemms: usize,
    pub cpu_gemms: usize,
}

impl PassCost {
    /// End-to-end service time: the simulator serializes a pass's operators
    /// (no intra-request overlap modeled across the PIM/CPU boundary).
    pub fn total(&self) -> u64 {
        self.pim_cycles + self.cpu_cycles
    }
}

/// The end-to-end executor with per-shape memoization. GEMM simulations
/// route through a persistent [`SessionCache`], so a long-lived executor
/// (one per serving loop) builds each distinct shape's context once and
/// reuses its span programs and KeyRuns across every later request.
pub struct ModelExecutor {
    pub sys: SystemConfig,
    pub cpu: CpuModel,
    pub icpu: IdealCpuModel,
    session: Arc<SessionCache>,
    cache: FxHashMap<(GemmSpec, Scheme), (u64, Bucket)>,
    select_cache: FxHashMap<GemmSpec, SelectedCost>,
}

impl ModelExecutor {
    pub fn new(sys: SystemConfig) -> Self {
        Self::with_session(sys, Arc::new(SessionCache::new()))
    }

    /// An executor sharing an existing session cache — serving loops and
    /// sweep workers pool their shape-keyed contexts this way.
    pub fn with_session(sys: SystemConfig, session: Arc<SessionCache>) -> Self {
        Self {
            sys,
            cpu: CpuModel::default(),
            icpu: IdealCpuModel::default(),
            session,
            cache: FxHashMap::default(),
            select_cache: FxHashMap::default(),
        }
    }

    /// The shared session cache (shape-keyed contexts + hit counters).
    pub fn session(&self) -> &Arc<SessionCache> {
        &self.session
    }

    fn stp(&self, spec: &GemmSpec, opts: &SimOptions) -> stepstone_core::LatencyReport {
        simulate_gemm_session(&self.sys, spec, opts, &self.session, None)
    }

    /// Execute one GEMM under a scheme; returns (cycles, bucket).
    fn gemm_cycles(&mut self, spec: GemmSpec, scheme: Scheme) -> (u64, Bucket) {
        if let Some(&hit) = self.cache.get(&(spec, scheme)) {
            return hit;
        }
        let cpu = (self.cpu.cycles(&spec), Bucket::CpuGemm);
        let result = match scheme {
            Scheme::Cpu => cpu,
            Scheme::ICpu => (self.icpu.cycles(&spec), Bucket::CpuGemm),
            Scheme::StpStar => {
                let dv = self.stp(&spec, &SimOptions::stepstone(PimLevel::Device)).total;
                pick(&[(dv, Bucket::PimDv), cpu])
            }
            Scheme::Stp => {
                let dv = self.stp(&spec, &SimOptions::stepstone(PimLevel::Device)).total;
                let bg = self.stp(&spec, &SimOptions::stepstone(PimLevel::BankGroup)).total;
                pick(&[(bg, Bucket::PimBg), (dv, Bucket::PimDv), cpu])
            }
            Scheme::Echo => {
                let dv = self.stp(&spec, &SimOptions::echo(PimLevel::Device)).total;
                let bg = self.stp(&spec, &SimOptions::echo(PimLevel::BankGroup)).total;
                pick(&[(bg, Bucket::PimBg), (dv, Bucket::PimDv), cpu])
            }
            Scheme::Ncho => {
                let dv = simulate_ncho(&self.sys, &spec, PimLevel::Device, None).total;
                let bg = simulate_ncho(&self.sys, &spec, PimLevel::BankGroup, None).total;
                pick(&[(bg, Bucket::PimBg), (dv, Bucket::PimDv), cpu])
            }
            Scheme::Pei => {
                let dv = simulate_pei(&self.sys, &spec, PimLevel::Device, None).total;
                let bg = simulate_pei(&self.sys, &spec, PimLevel::BankGroup, None).total;
                pick(&[(bg, Bucket::PimBg), (dv, Bucket::PimDv), cpu])
            }
        };
        self.cache.insert((spec, scheme), result);
        result
    }

    /// Execute a whole model graph under a scheme.
    pub fn run(&mut self, model: &ModelGraph, scheme: Scheme) -> ModelReport {
        let mut report = ModelReport {
            model: model.name.to_string(),
            scheme: scheme.label().to_string(),
            ..Default::default()
        };
        for op in &model.ops {
            match op {
                Op::Gemm(spec) => {
                    let (cycles, bucket) = self.gemm_cycles(*spec, scheme);
                    report.add(bucket, cycles, true);
                }
                Op::CpuOp { bytes, flops, .. } => {
                    report.add(Bucket::CpuOther, cpu_other_cycles(*bytes, *flops), false);
                }
            }
        }
        report
    }

    /// Serving-mode selection for one GEMM: run §III-E's heuristic
    /// (`choose_backend`), then simulate the winner cycle-exactly through
    /// the session cache. Memoized per shape — under steady request
    /// streams only the first request of a shape pays simulation.
    pub fn selected_cost(&mut self, spec: GemmSpec) -> SelectedCost {
        if let Some(&hit) = self.select_cache.get(&spec) {
            return hit;
        }
        let backend = choose_backend(&self.sys, &spec, &self.cpu);
        let cost = match backend {
            Backend::Cpu => {
                SelectedCost { backend, cycles: self.cpu.cycles(&spec), data_cycles: 0 }
            }
            Backend::Pim { .. } => {
                let r = self.stp(&spec, &options_for(backend));
                SelectedCost { backend, cycles: r.total, data_cycles: r.dram.data_cycles }
            }
        };
        self.select_cache.insert(spec, cost);
        cost
    }

    /// Cost one whole model pass under serving-mode selection, split by
    /// execution side. This is the serving loop's batch service time.
    pub fn pass_cost(&mut self, model: &ModelGraph) -> PassCost {
        let mut pass = PassCost::default();
        for op in &model.ops {
            match op {
                Op::Gemm(spec) => {
                    let c = self.selected_cost(*spec);
                    match c.backend {
                        Backend::Cpu => {
                            pass.cpu_cycles += c.cycles;
                            pass.cpu_gemms += 1;
                        }
                        Backend::Pim { .. } => {
                            pass.pim_cycles += c.cycles;
                            pass.data_cycles += c.data_cycles;
                            pass.pim_gemms += 1;
                        }
                    }
                }
                Op::CpuOp { bytes, flops, .. } => {
                    pass.cpu_cycles += cpu_other_cycles(*bytes, *flops);
                }
            }
        }
        pass
    }
}

fn pick(cands: &[(u64, Bucket)]) -> (u64, Bucket) {
    *cands.iter().min_by_key(|(c, _)| *c).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{bert, dlrm, xlm};

    #[test]
    fn stp_beats_cpu_on_every_model() {
        let mut ex = ModelExecutor::new(SystemConfig::default());
        for model in [dlrm(4), bert(4)] {
            let cpu = ex.run(&model, Scheme::Cpu);
            let stp = ex.run(&model, Scheme::Stp);
            assert!(
                stp.total_cycles * 2 < cpu.total_cycles,
                "{}: stp={} cpu={}",
                model.name,
                stp.total_cycles,
                cpu.total_cycles
            );
        }
    }

    #[test]
    fn xlm_uses_both_pim_levels() {
        // §V-B: "XLM utilizes BG-level PIMs when N is small and, later,
        // switches to DV-level PIMs".
        let mut ex = ModelExecutor::new(SystemConfig::default());
        let r = ex.run(&xlm(4), Scheme::Stp);
        assert!(r.bucket(Bucket::PimBg) > 0, "{r:?}");
        // At growing sequence lengths the selection may stay BG in our
        // calibration; at minimum both levels must have been *evaluated*
        // and BG chosen for the small-N steps.
        assert!(r.gemm_backend_counts[1] > 0);
    }

    #[test]
    fn scheme_ordering_matches_fig8() {
        // STP ≤ eCHO ≤ nCHO and STP ≤ PEI on a GEMM-dominated model.
        let mut ex = ModelExecutor::new(SystemConfig::default());
        let model = dlrm(4);
        let stp = ex.run(&model, Scheme::Stp).total_cycles;
        let echo = ex.run(&model, Scheme::Echo).total_cycles;
        let ncho = ex.run(&model, Scheme::Ncho).total_cycles;
        let pei = ex.run(&model, Scheme::Pei).total_cycles;
        assert!(stp <= echo, "stp={stp} echo={echo}");
        assert!(echo <= ncho, "echo={echo} ncho={ncho}");
        assert!(stp < pei, "stp={stp} pei={pei}");
    }

    #[test]
    fn memoization_dedupes_repeated_blocks() {
        let mut ex = ModelExecutor::new(SystemConfig::default());
        let model = bert(4);
        let _ = ex.run(&model, Scheme::Stp);
        // BERT has only 3 distinct GEMM shapes.
        assert_eq!(ex.cache.len(), 3);
    }

    #[test]
    fn executors_share_one_session_cache() {
        // Two executors over the same Arc pool contexts: the second run
        // of the same model builds nothing new.
        let session = Arc::new(SessionCache::new());
        let model = dlrm(4);
        let mut a = ModelExecutor::with_session(SystemConfig::default(), session.clone());
        let _ = a.run(&model, Scheme::Stp);
        let built = session.misses();
        assert!(built > 0);
        let mut b = ModelExecutor::with_session(SystemConfig::default(), session.clone());
        let _ = b.run(&model, Scheme::Stp);
        assert_eq!(session.misses(), built, "second executor rebuilt contexts");
        assert!(session.hits() > 0);
    }

    #[test]
    fn pass_cost_covers_every_gemm_and_memoizes() {
        let mut ex = ModelExecutor::new(SystemConfig::default());
        let model = dlrm(8);
        let gemms = model.ops.iter().filter(|op| matches!(op, Op::Gemm(_))).count();
        let first = ex.pass_cost(&model);
        assert_eq!(first.pim_gemms + first.cpu_gemms, gemms);
        assert!(first.total() > 0);
        assert!(first.pim_gemms > 0, "{first:?}");
        // Steady state: a repeat pass is pure table lookups with the same
        // answer.
        let misses = ex.session().misses();
        let again = ex.pass_cost(&model);
        assert_eq!(first, again);
        assert_eq!(ex.session().misses(), misses);
    }
}
