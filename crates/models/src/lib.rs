//! End-to-end DL inference models over StepStone PIM (paper §V-B, Fig. 8):
//! DLRM (RM3), BERT, GPT2, and XLM operator graphs plus the seven-scheme
//! executor (CPU / iCPU / PEI / nCHO / eCHO / STP* / STP).

pub mod executor;
pub mod layers;

pub use executor::{Bucket, ModelExecutor, ModelReport, PassCost, Scheme, SelectedCost};
pub use layers::{all_models, bert, dlrm, gpt2, xlm, ModelGraph, Op};
