//! Vendored FxHash: the rustc multiply-rotate hash, dramatically cheaper
//! than SipHash for the small integer keys the simulator's hot maps use
//! (page numbers, block indices). Not DoS-resistant — simulator-internal
//! keys only.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m[&(i * 4096)], i as u32);
        }
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let h = |x: u64| bh.hash_one(x);
        assert_eq!(h(42), h(42));
        let distinct: FxHashSet<u64> = (0..4096u64).map(h).collect();
        assert_eq!(distinct.len(), 4096);
    }
}
