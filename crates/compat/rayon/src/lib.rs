//! Vendored data-parallelism subset of rayon built on `std::thread::scope`.
//!
//! Supports the `into_par_iter().map(..).collect()` shape the figure
//! drivers use. Work is distributed with an atomic work-stealing index so
//! heterogeneous jobs (e.g. GEMM sweeps mixing small and huge matrices)
//! balance across cores; result order matches input order, as with rayon.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParMap};
}

pub trait IntoParallelIterator: Sized {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self.into() }
    }
}

pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }
}

pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_map(self.items, &self.f).into_iter().collect()
    }
}

fn run_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("item claimed once");
                *results[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    results.into_iter().map(|m| m.into_inner().unwrap().expect("result set")).collect()
}

/// A scope for spawning structured tasks — the `rayon::scope` subset the
/// serving-load sweeps use. Built directly on [`std::thread::scope`]: every
/// `spawn` is an OS thread joined before `scope` returns, so borrows of
/// stack data from the enclosing frame are sound exactly as in rayon.
///
/// API-compatibility note: real rayon's `Scope` has a single `'scope`
/// lifetime; the std-backed shim needs the underlying `'env` as well. Code
/// written against this shim (closure-typed `|s|` / `|_|` spawns) compiles
/// unchanged against real rayon, keeping the manifest swap trivial.
pub struct Scope<'scope, 'env: 'scope> {
    s: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task into the scope. The task may itself spawn more tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let s = self.s;
        s.spawn(move || f(&Scope { s }));
    }
}

/// Create a scope in which structured tasks can be spawned; returns once
/// every spawned task (including nested spawns) has completed. Panics in
/// spawned tasks propagate, as with rayon.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { s }))
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn range_par_iter() {
        let out: Vec<usize> = (0..16usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), 16);
        assert_eq!(out[15], 16);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn scope_joins_all_spawns() {
        use std::sync::Mutex;
        let out: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        super::scope(|s| {
            for i in 0..8 {
                s.spawn({
                    let out = &out;
                    move |_| out.lock().unwrap().push(i)
                });
            }
        });
        let mut v = out.into_inner().unwrap();
        v.sort_unstable();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn scope_supports_nested_spawns_and_returns_value() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = AtomicUsize::new(0);
        let r = super::scope(|s| {
            s.spawn(|inner| {
                n.fetch_add(1, Ordering::Relaxed);
                inner.spawn(|_| {
                    n.fetch_add(10, Ordering::Relaxed);
                });
            });
            42
        });
        assert_eq!(r, 42);
        assert_eq!(n.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn scope_results_via_slot_vector() {
        // The fill-disjoint-slots pattern the serving sweep uses.
        use std::sync::Mutex;
        let slots: Vec<Mutex<Option<u64>>> = (0..5).map(|_| Mutex::new(None)).collect();
        super::scope(|s| {
            for (i, slot) in slots.iter().enumerate() {
                s.spawn(move |_| *slot.lock().unwrap() = Some(i as u64 * i as u64));
            }
        });
        let v: Vec<u64> = slots.into_iter().map(|m| m.into_inner().unwrap().unwrap()).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }
}
