//! Vendored serde facade: marker traits plus no-op derive macros.
//!
//! See `crates/compat/serde_derive` — the workspace has no crates.io
//! access, and nothing in the simulator relies on serde's data model at
//! runtime, so the derives are annotations only.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
