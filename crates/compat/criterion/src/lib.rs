//! Vendored micro-benchmark harness with criterion's macro/entry-point
//! shape (`criterion_group!` / `criterion_main!` / `Criterion::bench_function`).
//! Reports mean wall-clock per iteration on stdout; benches must set
//! `harness = false`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_RUN: Duration = Duration::from_millis(200);

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name, self.sample_size);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { prefix: name.to_string(), c: self }
    }
}

pub struct BenchmarkGroup<'a> {
    prefix: String,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.c.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Bencher {
    /// (iterations, elapsed) recorded by the closure passed to `iter`.
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: time one call, then size the batch toward TARGET_RUN.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_RUN.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.measured = Some((iters, t0.elapsed()));
    }

    fn report(&self, name: &str, _samples: usize) {
        match self.measured {
            Some((iters, total)) => {
                let per = total.as_nanos() as f64 / iters as f64;
                println!("bench {name:<48} {per:>14.1} ns/iter  ({iters} iters)");
            }
            None => println!("bench {name:<48} (no measurement)"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
