//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The simulator uses serde derives only as annotations (JSON output is
//! hand-rolled in `stepstone-bench`), so the vendored derive accepts the
//! usual `#[serde(...)]` attributes and expands to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
