//! Vendored property-testing core with proptest's surface API:
//! `proptest! { #[test] fn f(x in strategy) { .. } }`, range / tuple /
//! `any::<T>()` / `collection::vec` strategies, `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Sampling is deterministic: the RNG is seeded from the test name, so a
//! failure reproduces on every run (no shrinking — failing inputs print via
//! the assertion message).

use std::marker::PhantomData;
use std::ops::Range;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Deterministic SplitMix64 stream for strategy sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        Self { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        self.next_u64() % n
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Produce any value of `T` (uniform over the representation).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(#[test] fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // One case per closure so `prop_assume!` can bail early
                    // with `return`.
                    let run = move || $body;
                    let result: Result<(), String> = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    )
                    .map_err(|e| {
                        e.downcast_ref::<String>().cloned().or_else(|| {
                            e.downcast_ref::<&str>().map(|s| s.to_string())
                        }).unwrap_or_else(|| "panic".into())
                    });
                    if let Err(msg) = result {
                        panic!("property {} failed on case {case}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u32..10, any::<bool>()), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (n, _) in v {
                prop_assert!(n < 10);
            }
        }

        #[test]
        fn prop_map_applies(d in (0u64..5).prop_map(|x| x * 2)) {
            prop_assert!(d % 2 == 0 && d < 10);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = super::TestRng::from_name("t");
        let mut b = super::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
