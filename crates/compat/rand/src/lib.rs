//! Vendored subset of the `rand` API over a SplitMix64 generator:
//! `StdRng::seed_from_u64`, `gen::<f64>()`, and `gen_range` on integer and
//! float ranges — everything the synthetic traffic generator uses.

use std::ops::Range;

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a `Range<Self>`.
pub trait SampleUniform: Sized {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn from_u64(raw: u64) -> u64 {
        raw
    }
}

impl SampleUniform for u64 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + rng.next_u64() % span
    }
}

impl SampleUniform for usize {
    fn sample_range(rng: &mut dyn RngCore, range: Range<usize>) -> usize {
        u64::sample_range(rng, range.start as u64..range.end as u64) as usize
    }
}

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<f64>) -> f64 {
        range.start + f64::from_u64(rng.next_u64()) * (range.end - range.start)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — deterministic, fast, and plenty for synthetic traffic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(5u64..9);
            assert!((5..9).contains(&x));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }
}
