//! Roofline models and batch sweeps for Figs. 1 and 7.
//!
//! Fig. 1 motivates the paper: for inference-appropriate batch sizes
//! (N ≲ 32) the GEMM's operational intensity sits on the bandwidth-bound
//! slope of both the CPU and the GPU, and a host-memory-resident weight
//! matrix pushes the GPU onto the PCIe slope. Fig. 7 overlays the achieved
//! StepStone-BG/DV throughput from the detailed simulation.
//!
//! The GPU is modeled analytically from the Titan Xp's published peaks (see
//! DESIGN.md §4): 12.15 Tflop/s fp32, 547 GB/s device memory, ≈16 GB/s
//! PCIe 3.0 x16, with a CUTLASS-like efficiency factor.

use serde::{Deserialize, Serialize};
use stepstone_addr::PimLevel;
use stepstone_core::{simulate_gemm, CpuModel, GemmSpec, SystemConfig};

/// A classic two-parameter roofline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    pub name: &'static str,
    pub peak_gflops: f64,
    pub bw_gbps: f64,
}

impl Roofline {
    /// Attainable Gflop/s at operational intensity `oi` (flops/byte).
    pub fn attainable(&self, oi: f64) -> f64 {
        (oi * self.bw_gbps).min(self.peak_gflops)
    }

    /// The ridge point: intensity where compute starts to bind.
    pub fn ridge(&self) -> f64 {
        self.peak_gflops / self.bw_gbps
    }
}

/// Xeon 8280-class CPU roofline (2 × AVX-512 FMA × 28 cores at 2.7 GHz;
/// six DDR4-2933 channels ≈ 131 GB/s).
pub fn cpu_roofline() -> Roofline {
    Roofline { name: "CPU", peak_gflops: 4838.0, bw_gbps: 131.0 }
}

/// Titan Xp with weights resident in device memory.
pub fn gpu_device_roofline() -> Roofline {
    Roofline { name: "GPU (device mem)", peak_gflops: 12_150.0, bw_gbps: 547.0 }
}

/// Titan Xp with weights in host memory (PCIe 3.0 x16 data loading).
pub fn gpu_host_roofline() -> Roofline {
    Roofline { name: "GPU (host mem)", peak_gflops: 12_150.0, bw_gbps: 16.0 }
}

/// StepStone aggregate-bandwidth rooflines (per level, whole system).
pub fn stepstone_roofline(level: PimLevel) -> Roofline {
    // BG: 16 units × 64 B / tCCDL(6) ≈ 205 GB/s; DV: 4 × 64 B / tCCDS(4)
    // ≈ 77 GB/s; CH: 2 channels × 19.2 GB/s.
    match level {
        PimLevel::BankGroup => {
            Roofline { name: "StepStone-BG", peak_gflops: 2458.0, bw_gbps: 204.8 }
        }
        PimLevel::Device => Roofline { name: "StepStone-DV", peak_gflops: 2458.0, bw_gbps: 76.8 },
        PimLevel::Channel => Roofline { name: "StepStone-CH", peak_gflops: 1229.0, bw_gbps: 38.4 },
    }
}

/// One achieved-performance point on the roofline plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    pub n: usize,
    pub oi: f64,
    pub gflops: f64,
}

/// Measured-equivalent CPU points across a batch sweep.
pub fn sweep_cpu(m: usize, k: usize, batches: &[usize]) -> Vec<SweepPoint> {
    let cpu = CpuModel::default();
    batches
        .iter()
        .map(|&n| {
            let spec = GemmSpec::new(m, k, n);
            SweepPoint { n, oi: spec.operational_intensity(), gflops: cpu.gflops(&spec) }
        })
        .collect()
}

/// GPU model: roofline shape with a CUTLASS-like efficiency curve and a
/// fixed kernel launch overhead; host-resident weights stream over PCIe.
///
/// The memory-path efficiency falls off steeply for tall-skinny GEMMs
/// (CUTLASS 2.2's tiles waste most of each fetched A panel when N is a few
/// columns); the curve is calibrated to the paper's measured crossovers:
/// StepStone-BG stays ahead of the device-resident GPU for N ≤ 16 and the
/// GPU takes over beyond (Fig. 7, §V-A).
pub fn sweep_gpu(m: usize, k: usize, batches: &[usize], host_resident: bool) -> Vec<SweepPoint> {
    let rl = if host_resident { gpu_host_roofline() } else { gpu_device_roofline() };
    let eff = 0.75;
    let launch_overhead_s = 8e-6;
    batches
        .iter()
        .map(|&n| {
            let spec = GemmSpec::new(m, k, n);
            let flops = spec.flops() as f64;
            // PCIe streaming has no skinny-tile penalty; HBM reads do.
            let mem_eff = if host_resident {
                0.9
            } else {
                (n as f64 / 128.0).clamp(0.08, 0.85)
            };
            let t_data = spec.a_bytes() as f64 / (rl.bw_gbps * 1e9 * mem_eff);
            let t_comp = flops / (rl.peak_gflops * 1e9 * eff);
            let t = t_data.max(t_comp) + launch_overhead_s;
            SweepPoint { n, oi: spec.operational_intensity(), gflops: flops / t / 1e9 }
        })
        .collect()
}

/// Achieved StepStone performance from the detailed simulator (Fig. 7's
/// simulated points, including localization/reduction overheads). Batches
/// beyond the PIM chunk size run as several batch-32 GEMMs, exactly as the
/// paper serves large batches (§V-B's splitting).
pub fn sweep_stepstone(
    sys: &SystemConfig,
    m: usize,
    k: usize,
    batches: &[usize],
    level: PimLevel,
) -> Vec<SweepPoint> {
    batches
        .iter()
        .map(|&n| {
            let spec = GemmSpec::new(m, k, n);
            let r = if n > stepstone_core::PIM_CHUNK_BATCH {
                stepstone_core::simulate_split_batch(sys, m, k, n, level)
            } else {
                simulate_gemm(sys, &spec, level)
            };
            SweepPoint {
                n,
                oi: spec.operational_intensity(),
                gflops: spec.flops() as f64 / r.seconds() / 1e9,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_shape() {
        let rl = cpu_roofline();
        assert!(rl.attainable(0.1) < rl.attainable(10.0));
        assert_eq!(rl.attainable(1e6), rl.peak_gflops);
        assert!((rl.attainable(1.0) - 131.0).abs() < 1e-9);
    }

    #[test]
    fn small_batches_are_bandwidth_bound_everywhere() {
        // Fig. 1: "all three systems are bandwidth bound for
        // inference-appropriate batch sizes (N ≲ 32)".
        for n in [1usize, 8, 32] {
            let oi = GemmSpec::new(1024, 4096, n).operational_intensity();
            assert!(oi < cpu_roofline().ridge());
            assert!(oi < gpu_device_roofline().ridge());
        }
        // And large batches are not.
        let oi = GemmSpec::new(1024, 4096, 1024).operational_intensity();
        assert!(oi > cpu_roofline().ridge());
    }

    #[test]
    fn gpu_loses_to_cpu_with_host_resident_weights() {
        // Fig. 1: "for such small batches, GPU performance is lower than
        // the CPU if matrix A is in host memory".
        let cpu = sweep_cpu(1024, 4096, &[1, 4]);
        let gpu = sweep_gpu(1024, 4096, &[1, 4], true);
        for (c, g) in cpu.iter().zip(&gpu) {
            assert!(g.gflops < c.gflops * 2.0, "PCIe-bound GPU ≈ or < CPU");
        }
        // Device-resident weights flip the comparison at larger batch.
        let gpu_dev = sweep_gpu(1024, 4096, &[64], false);
        let cpu64 = sweep_cpu(1024, 4096, &[64]);
        assert!(gpu_dev[0].gflops > cpu64[0].gflops);
    }

    #[test]
    fn stepstone_beats_cpu_and_host_gpu_at_small_batch() {
        // Fig. 7's headline: StepStone exhibits higher throughput at all
        // reasonable batch sizes when weights live in main memory.
        let sys = SystemConfig::default();
        let stp = sweep_stepstone(&sys, 1024, 4096, &[1, 4, 16], PimLevel::BankGroup);
        let cpu = sweep_cpu(1024, 4096, &[1, 4, 16]);
        let gpu = sweep_gpu(1024, 4096, &[1, 4, 16], true);
        for ((s, c), g) in stp.iter().zip(&cpu).zip(&gpu) {
            assert!(s.gflops > c.gflops, "N={}: stp {} vs cpu {}", s.n, s.gflops, c.gflops);
            assert!(s.gflops > g.gflops, "N={}: stp {} vs gpu {}", s.n, s.gflops, g.gflops);
        }
    }

    #[test]
    fn gpu_crossover_matches_paper() {
        // Fig. 7: "Even if the model fits in GPU memory, StepStone offers
        // higher performance for batches of 16 samples or less."
        let sys = SystemConfig::default();
        let stp = sweep_stepstone(&sys, 1024, 4096, &[8, 16, 32], PimLevel::BankGroup);
        let gpu = sweep_gpu(1024, 4096, &[8, 16, 32], false);
        assert!(stp[0].gflops > gpu[0].gflops, "N=8");
        assert!(stp[1].gflops > gpu[1].gflops, "N=16");
        assert!(stp[2].gflops < gpu[2].gflops, "N=32: GPU takes over");
    }

    #[test]
    fn simulated_points_sit_below_their_roofline() {
        // "The gap between the rooflines and simulated performance of
        // StepStone stems from the localization and reduction overheads."
        let sys = SystemConfig::default();
        for level in [PimLevel::BankGroup, PimLevel::Device] {
            let rl = stepstone_roofline(level);
            for p in sweep_stepstone(&sys, 1024, 4096, &[1, 8], level) {
                assert!(p.gflops <= rl.attainable(p.oi) * 1.05, "{level:?} N={}", p.n);
            }
        }
    }
}
