//! Inter-device fabric for multi-PIM reduction (scale-out beyond one
//! memory controller).
//!
//! The paper's evaluation stops at PIMs behind a single controller: the
//! reduce phase and every cross-PIM byte ride host DMA. This crate models
//! an inter-DIMM/inter-channel interconnect as a first-class fabric so a
//! reduce phase can move partial sums PIM→PIM without the host round
//! trip:
//!
//! * [`Topology`] — route-aware topology trait ([`Line`] and [`Ring`] to
//!   start) enumerating directed links and the hop sequence between any
//!   two nodes;
//! * [`FabricState`] — hop-by-hop in-flight message tracking over
//!   per-link FIFO serializers with configurable bandwidth and hop
//!   latency, plus per-link peak-demand statistics ([`LinkStats`]);
//! * [`FabricState::reduce_to_root`] — the reduction schedule the
//!   simulator's Phase-3 integration uses: every node's locally merged
//!   partial-`C` payload is routed to a root node and folded in by the
//!   root's accumulator.
//!
//! The fabric *composes with* `dram::MemoryBackend` rather than replacing
//! it: the engine drains each device's partial-`C` region through the
//! memory backend exactly as the host-DMA path does (same DRAM command
//! stream, same `DramStats`), and the per-channel drain completion times
//! become the fabric's injection times. Senders stall only for the local
//! handoff — once a message is accepted by its first link, the producing
//! node is free; contention is carried by the links themselves (the
//! hwgc-soft interconnect-routing lesson). See `docs/fabric.md`.

pub mod state;
pub mod topology;

pub use state::{
    FabricConfig, FabricState, FabricStats, LinkEvent, LinkStats, Message, ReduceVia,
};
pub use topology::{build_topology, Line, Ring, Topology, TopologyKind};
