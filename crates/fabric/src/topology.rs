//! Route-aware fabric topologies.
//!
//! A topology enumerates *directed* links between device nodes and the
//! ordered link sequence a message crosses from one node to another.
//! Link ids are dense (`0..n_links`) so [`crate::FabricState`] can keep
//! per-link serializer state and statistics in flat vectors.

use serde::{Deserialize, Serialize};

/// Topology selector for configs (the trait object itself is built at the
/// simulation boundary via [`build_topology`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Open chain: node `i` links to `i±1`.
    Line,
    /// Closed ring: node `i` links to `(i±1) mod n`; routes take the
    /// shorter arc (ties go clockwise, deterministically).
    Ring,
}

impl TopologyKind {
    pub fn tag(&self) -> &'static str {
        match self {
            TopologyKind::Line => "line",
            TopologyKind::Ring => "ring",
        }
    }
}

/// A fabric topology: nodes, directed links, and hop-by-hop routes.
///
/// Implementations must be deterministic — `route` is part of the timing
/// model, so the same `(src, dst)` must always yield the same link
/// sequence.
pub trait Topology: Send + Sync {
    /// Number of device nodes.
    fn nodes(&self) -> usize;

    /// Number of directed links (dense ids `0..n_links`).
    fn n_links(&self) -> usize;

    /// Endpoints `(from, to)` of a directed link.
    fn link_ends(&self, link: usize) -> (usize, usize);

    /// The ordered directed links a message crosses from `src` to `dst`
    /// (empty when `src == dst`).
    fn route(&self, src: usize, dst: usize) -> Vec<usize>;

    fn name(&self) -> &'static str;
}

/// Open chain of `n` nodes: `2(n-1)` directed links. Rightward link
/// `i → i+1` has id `i`; leftward link `i+1 → i` has id `(n-1) + i`.
pub struct Line {
    n: usize,
}

impl Line {
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a fabric needs at least two nodes");
        Self { n }
    }
}

impl Topology for Line {
    fn nodes(&self) -> usize {
        self.n
    }

    fn n_links(&self) -> usize {
        2 * (self.n - 1)
    }

    fn link_ends(&self, link: usize) -> (usize, usize) {
        let right = self.n - 1;
        if link < right {
            (link, link + 1)
        } else {
            let i = link - right;
            (i + 1, i)
        }
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        assert!(src < self.n && dst < self.n, "node out of range");
        if src < dst {
            (src..dst).collect()
        } else {
            // Hop j → j-1 rides leftward link (n-1) + (j-1).
            (dst..src).rev().map(|i| (self.n - 1) + i).collect()
        }
    }

    fn name(&self) -> &'static str {
        "line"
    }
}

/// Closed ring of `n` nodes: `2n` directed links. Clockwise link
/// `i → (i+1) mod n` has id `i`; counter-clockwise link `(i+1) mod n → i`
/// has id `n + i`. Routes take the shorter arc; an exact tie (distance
/// `n/2`) goes clockwise so routing is deterministic.
pub struct Ring {
    n: usize,
}

impl Ring {
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a fabric needs at least two nodes");
        Self { n }
    }
}

impl Topology for Ring {
    fn nodes(&self) -> usize {
        self.n
    }

    fn n_links(&self) -> usize {
        2 * self.n
    }

    fn link_ends(&self, link: usize) -> (usize, usize) {
        if link < self.n {
            (link, (link + 1) % self.n)
        } else {
            let i = link - self.n;
            ((i + 1) % self.n, i)
        }
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        assert!(src < self.n && dst < self.n, "node out of range");
        if src == dst {
            return Vec::new();
        }
        let cw = (dst + self.n - src) % self.n;
        let ccw = self.n - cw;
        if cw <= ccw {
            (0..cw).map(|h| (src + h) % self.n).collect()
        } else {
            // Hop j → (j-1) mod n rides counter-clockwise link n + ((j-1) mod n).
            (0..ccw).map(|h| self.n + (src + self.n - 1 - h) % self.n).collect()
        }
    }

    fn name(&self) -> &'static str {
        "ring"
    }
}

/// Build a boxed topology of `kind` over `nodes` devices.
pub fn build_topology(kind: TopologyKind, nodes: usize) -> Box<dyn Topology> {
    match kind {
        TopologyKind::Line => Box::new(Line::new(nodes)),
        TopologyKind::Ring => Box::new(Ring::new(nodes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route_nodes(t: &dyn Topology, src: usize, dst: usize) -> Vec<usize> {
        let mut at = src;
        let mut path = vec![at];
        for l in t.route(src, dst) {
            let (from, to) = t.link_ends(l);
            assert_eq!(from, at, "route hop must leave the current node");
            at = to;
            path.push(at);
        }
        assert_eq!(at, dst, "route must end at the destination");
        path
    }

    #[test]
    fn line_routes_are_shortest_and_consistent() {
        let t = Line::new(5);
        assert_eq!(t.n_links(), 8);
        for src in 0..5 {
            for dst in 0..5 {
                let path = route_nodes(&t, src, dst);
                assert_eq!(path.len() - 1, src.abs_diff(dst));
            }
        }
    }

    #[test]
    fn ring_routes_take_the_shorter_arc() {
        let t = Ring::new(6);
        assert_eq!(t.n_links(), 12);
        for src in 0..6 {
            for dst in 0..6 {
                let path = route_nodes(&t, src, dst);
                let cw = (dst + 6 - src) % 6;
                assert_eq!(path.len() - 1, cw.min(6 - cw));
            }
        }
        // The exact tie (distance 3) goes clockwise.
        assert_eq!(t.route(0, 3), vec![0, 1, 2]);
    }

    #[test]
    fn link_ids_are_dense_and_disjoint() {
        for t in [build_topology(TopologyKind::Line, 4), build_topology(TopologyKind::Ring, 4)] {
            let mut seen = std::collections::HashSet::new();
            for l in 0..t.n_links() {
                let (from, to) = t.link_ends(l);
                assert!(from < t.nodes() && to < t.nodes());
                assert_ne!(from, to);
                assert!(seen.insert((from, to, l)));
            }
        }
    }
}
