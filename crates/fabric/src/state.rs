//! Hop-by-hop fabric simulation: per-link FIFO serializers, in-flight
//! message tracking, peak-demand statistics, and the reduce-to-root
//! schedule the Phase-3 integration uses.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::topology::{build_topology, Topology, TopologyKind};

/// How the simulator merges partial `C` across PIM devices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceVia {
    /// The paper's path: partial sums drain over each channel to the host,
    /// which performs the merge. The default — bit-identical to the
    /// pre-fabric simulator and CI-gated.
    #[default]
    HostDma,
    /// Partial sums drain locally, then move PIM→PIM over the inter-device
    /// fabric to a root accumulator — no host round trip.
    Fabric,
}

/// Fabric link/accumulator parameters. Node count is supplied by the
/// caller (the Phase-3 integration uses one node per DRAM channel —
/// the inter-DIMM boundary).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    pub topology: TopologyKind,
    /// Serializer bandwidth of every directed link, bytes per DRAM-clock
    /// cycle (defaults match the DDR4 channel: 16 B/cycle).
    pub link_bytes_per_cycle: u64,
    /// Per-hop flight latency in cycles (pipeline time; does not occupy
    /// the serializer).
    pub link_latency: u64,
    /// Fold rate of the root node's reduce accumulator, bytes per cycle.
    pub accum_bytes_per_cycle: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            topology: TopologyKind::Ring,
            link_bytes_per_cycle: 16,
            link_latency: 40,
            accum_bytes_per_cycle: 16,
        }
    }
}

impl FabricConfig {
    pub fn with_topology(mut self, kind: TopologyKind) -> Self {
        self.topology = kind;
        self
    }
}

/// One fabric message: `bytes` moving `src → dst`, injected at `inject`
/// (absolute cycles). `id` is the deterministic tie-break for simultaneous
/// arrivals at one link, so the simulation outcome is independent of the
/// order messages are *listed* in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    pub id: u64,
    pub src: usize,
    pub dst: usize,
    pub bytes: u64,
    pub inject: u64,
}

/// Per-directed-link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    pub src: usize,
    pub dst: usize,
    /// Bytes carried (each message counts once per link it crosses).
    pub bytes: u64,
    /// Cycles the serializer was transmitting.
    pub busy_cycles: u64,
    pub messages: u64,
    /// Peak demand: the largest number of bytes simultaneously outstanding
    /// at this link (queued behind the serializer or in transmission).
    pub peak_demand_bytes: u64,
    /// First cycle the serializer went busy (0 when unused).
    pub first_busy: u64,
    /// Last cycle the serializer freed (0 when unused).
    pub last_free: u64,
}

impl LinkStats {
    /// Delivered bandwidth over the link's active span `[first_busy,
    /// last_free)`, in GB/s at `clock_hz` — the "peak GB/s" figure of the
    /// bench section (demand beyond it shows up in `peak_demand_bytes`).
    pub fn gbps_active(&self, clock_hz: u64) -> f64 {
        let span = self.last_free.saturating_sub(self.first_busy);
        if span == 0 {
            return 0.0;
        }
        self.bytes as f64 / span as f64 * clock_hz as f64 / 1e9
    }

    fn merge(&mut self, o: &LinkStats) {
        self.bytes += o.bytes;
        self.busy_cycles += o.busy_cycles;
        self.messages += o.messages;
        self.peak_demand_bytes = self.peak_demand_bytes.max(o.peak_demand_bytes);
        if o.messages > 0 {
            self.first_busy =
                if self.messages == o.messages { o.first_busy } else { self.first_busy.min(o.first_busy) };
            self.last_free = self.last_free.max(o.last_free);
        }
    }
}

/// Whole-fabric statistics attached to a `LatencyReport` when the reduce
/// phase ran over the fabric.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricStats {
    /// Topology tag ("line" / "ring").
    pub topology: String,
    pub nodes: usize,
    pub links: Vec<LinkStats>,
    /// Bytes injected into the fabric (sum over messages, once each).
    pub bytes_injected: u64,
    /// Bytes delivered at destinations (== injected: conservation).
    pub bytes_delivered: u64,
    /// Cycles the reduce spent past the last local drain (fabric transit
    /// plus root accumulation).
    pub reduce_fabric_cycles: u64,
}

impl FabricStats {
    /// Merge a sequential sub-execution (decomposed sub-GEMM rounds over
    /// the same fabric).
    pub fn merge(&mut self, o: &FabricStats) {
        if self.links.is_empty() {
            *self = o.clone();
            return;
        }
        if self.topology != o.topology || self.links.len() != o.links.len() {
            return;
        }
        for (l, ol) in self.links.iter_mut().zip(&o.links) {
            l.merge(ol);
        }
        self.bytes_injected += o.bytes_injected;
        self.bytes_delivered += o.bytes_delivered;
        self.reduce_fabric_cycles += o.reduce_fabric_cycles;
    }
}

/// One transmission at a link, in service (FIFO) order — the conformance
/// suite asserts ordering and non-overlap from this log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    pub message: u64,
    /// When the message arrived at (was handed to) this link.
    pub arrival: u64,
    /// When its transmission started (>= arrival; >= previous finish).
    pub start: u64,
    /// When the serializer freed (`start + ceil(bytes/bw)`).
    pub finish: u64,
}

/// In-flight transmission bookkeeping for peak-demand tracking.
struct Outstanding {
    clears_at: u64,
    bytes: u64,
}

struct Link {
    free_at: u64,
    stats: LinkStats,
    outstanding: Vec<Outstanding>,
    log: Vec<LinkEvent>,
}

/// The fabric simulator: a topology plus per-link serializer state.
///
/// Messages traverse their route store-and-forward: a hop's serializer is
/// occupied for `ceil(bytes / link_bytes_per_cycle)` cycles, the head
/// additionally pays `link_latency` flight cycles, and the whole message
/// is available to the next hop when both complete. Links serve messages
/// in arrival order (FIFO, ties broken by message id), so the outcome is
/// independent of how the message list is ordered — the property the
/// conformance suite pins.
pub struct FabricState {
    cfg: FabricConfig,
    topo: Box<dyn Topology>,
    links: Vec<Link>,
}

impl FabricState {
    pub fn new(cfg: FabricConfig, nodes: usize) -> Self {
        let topo = build_topology(cfg.topology, nodes);
        let links = (0..topo.n_links())
            .map(|l| {
                let (src, dst) = topo.link_ends(l);
                Link {
                    free_at: 0,
                    stats: LinkStats { src, dst, ..LinkStats::default() },
                    outstanding: Vec::new(),
                    log: Vec::new(),
                }
            })
            .collect();
        Self { cfg, topo, links }
    }

    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Run a message schedule to completion; returns each message's
    /// delivery time at its destination, in input order. Deterministic:
    /// events are ordered by (time, message id, hop).
    pub fn run(&mut self, msgs: &[Message]) -> Vec<u64> {
        let routes: Vec<Vec<usize>> =
            msgs.iter().map(|m| self.topo.route(m.src, m.dst)).collect();
        let mut delivered: Vec<u64> = msgs.iter().map(|m| m.inject).collect();
        // (arrival time, message id, message index, hop index) min-heap.
        let mut events: BinaryHeap<Reverse<(u64, u64, usize, usize)>> = BinaryHeap::new();
        for (ix, m) in msgs.iter().enumerate() {
            if !routes[ix].is_empty() {
                events.push(Reverse((m.inject, m.id, ix, 0)));
            }
        }
        while let Some(Reverse((arrival, id, ix, hop))) = events.pop() {
            let m = &msgs[ix];
            let link = &mut self.links[routes[ix][hop]];
            let xmit = m.bytes.div_ceil(self.cfg.link_bytes_per_cycle.max(1));
            let start = arrival.max(link.free_at);
            let finish = start + xmit;
            link.free_at = finish;
            link.log.push(LinkEvent { message: id, arrival, start, finish });
            // Peak demand: bytes outstanding (queued or transmitting) at
            // this link the instant this message arrived.
            link.outstanding.retain(|o| o.clears_at > arrival);
            link.outstanding.push(Outstanding { clears_at: finish, bytes: m.bytes });
            let demand: u64 = link.outstanding.iter().map(|o| o.bytes).sum();
            let s = &mut link.stats;
            s.bytes += m.bytes;
            s.busy_cycles += xmit;
            s.peak_demand_bytes = s.peak_demand_bytes.max(demand);
            if s.messages == 0 {
                s.first_busy = start;
            }
            s.messages += 1;
            s.last_free = s.last_free.max(finish);
            // Store-and-forward: the next hop sees the message after the
            // serializer drains it plus the hop flight latency.
            let at_next = finish + self.cfg.link_latency;
            if hop + 1 < routes[ix].len() {
                events.push(Reverse((at_next, id, ix, hop + 1)));
            } else {
                delivered[ix] = at_next;
            }
        }
        delivered
    }

    /// The reduction schedule: every node's locally merged partial-`C`
    /// payload (`(ready_cycle, bytes)` per node, index = node id) is routed
    /// to `root`, whose accumulator folds arrivals in delivery order at
    /// `accum_bytes_per_cycle`. The root's own payload is the accumulation
    /// base (ready when its local drain ends). Returns the cycle the
    /// reduction completes.
    pub fn reduce_to_root(&mut self, payloads: &[(u64, u64)], root: usize) -> u64 {
        assert_eq!(payloads.len(), self.topo.nodes(), "one payload per fabric node");
        assert!(root < self.topo.nodes());
        let msgs: Vec<Message> = payloads
            .iter()
            .enumerate()
            .filter(|&(i, &(_, bytes))| i != root && bytes > 0)
            .map(|(i, &(ready, bytes))| Message {
                id: i as u64,
                src: i,
                dst: root,
                bytes,
                inject: ready,
            })
            .collect();
        let delivered = self.run(&msgs);
        // Fold arrivals in delivery order (ties by node id — `run` is
        // already deterministic, this just fixes the accumulator's serial
        // order).
        let mut order: Vec<usize> = (0..msgs.len()).collect();
        order.sort_by_key(|&i| (delivered[i], msgs[i].id));
        let mut acc_free = payloads[root].0;
        for &i in &order {
            let fold = msgs[i].bytes.div_ceil(self.cfg.accum_bytes_per_cycle.max(1));
            acc_free = acc_free.max(delivered[i]) + fold;
        }
        acc_free
    }

    /// Per-link statistics accumulated so far.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.links.iter().map(|l| l.stats).collect()
    }

    /// The FIFO service log of one link (conformance suite).
    pub fn link_log(&self, link: usize) -> &[LinkEvent] {
        &self.links[link].log
    }

    /// Fold the run's statistics into a report-attachable summary.
    /// `reduce_fabric_cycles` is the caller's `reduce end − last drain`.
    pub fn stats(&self, bytes_injected: u64, reduce_fabric_cycles: u64) -> FabricStats {
        let links = self.link_stats();
        // Every message's bytes cross its first link exactly once and leave
        // its last link exactly once; injected == delivered by construction
        // of `run` (no drops), which the conformance suite re-checks from
        // the delivery vector.
        FabricStats {
            topology: self.topo.name().to_string(),
            nodes: self.topo.nodes(),
            links,
            bytes_injected,
            bytes_delivered: bytes_injected,
            reduce_fabric_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FabricConfig {
        FabricConfig::default()
    }

    #[test]
    fn single_message_pays_bandwidth_and_latency_per_hop() {
        let mut f = FabricState::new(cfg().with_topology(TopologyKind::Line), 4);
        // 0 → 3: three hops, 160 bytes = 10 cycles serialization each.
        let d = f.run(&[Message { id: 0, src: 0, dst: 3, bytes: 160, inject: 100 }]);
        assert_eq!(d, vec![100 + 3 * (10 + 40)]);
        let total: u64 = f.link_stats().iter().map(|l| l.bytes).sum();
        assert_eq!(total, 3 * 160);
    }

    #[test]
    fn fifo_contention_serializes_on_the_shared_link() {
        let mut f = FabricState::new(cfg().with_topology(TopologyKind::Line), 3);
        // Both messages funnel into link 1 → 2.
        let d = f.run(&[
            Message { id: 0, src: 1, dst: 2, bytes: 1600, inject: 0 },
            Message { id: 1, src: 1, dst: 2, bytes: 1600, inject: 0 },
        ]);
        // 100 cycles serialization each; the second waits for the first.
        assert_eq!(d[0], 140);
        assert_eq!(d[1], 240);
        let l = &f.link_stats()[1]; // rightward link 1→2
        assert_eq!(l.peak_demand_bytes, 3200);
        assert_eq!(l.busy_cycles, 200);
    }

    #[test]
    fn reduce_to_root_waits_for_slowest_payload() {
        let mut f = FabricState::new(cfg(), 4);
        let payloads = [(50, 1600), (10, 1600), (20, 1600), (1000, 1600)];
        let end = f.reduce_to_root(&payloads, 0);
        // Node 3's payload is ready last (cycle 1000); the reduce cannot
        // complete before it transits plus folds.
        assert!(end > 1000 + 100, "end={end}");
        let stats = f.stats(3 * 1600, 0);
        assert_eq!(stats.bytes_injected, stats.bytes_delivered);
    }

    #[test]
    fn reduce_is_shift_invariant() {
        let payloads = [(50u64, 1600u64), (10, 800), (20, 3200), (70, 1600)];
        let mut a = FabricState::new(cfg(), 4);
        let base = a.reduce_to_root(&payloads, 0);
        let shifted: Vec<(u64, u64)> =
            payloads.iter().map(|&(t, b)| (t + 12_345, b)).collect();
        let mut b = FabricState::new(cfg(), 4);
        assert_eq!(b.reduce_to_root(&shifted, 0), base + 12_345);
    }

    #[test]
    fn zero_payload_nodes_send_nothing() {
        let mut f = FabricState::new(cfg(), 4);
        let end = f.reduce_to_root(&[(100, 1600), (0, 0), (0, 0), (0, 0)], 0);
        assert_eq!(end, 100, "root-only payload needs no fabric time");
        assert!(f.link_stats().iter().all(|l| l.messages == 0));
    }
}
