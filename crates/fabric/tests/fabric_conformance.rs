//! Differential fabric-conformance suite.
//!
//! Random topologies and message schedules pin the invariants the engine
//! integration relies on: byte conservation, per-link FIFO service,
//! ring ≡ line degeneracy on two nodes, and schedule determinism (the
//! result is a pure function of the message *set*, independent of input
//! enumeration order — which is what makes serial and parallel drivers
//! agree bit-for-bit).

use proptest::prelude::*;
use stepstone_fabric::{
    build_topology, FabricConfig, FabricState, Message, TopologyKind,
};

/// A random schedule: topology kind, node count, link parameters, and a
/// message list with unique ids.
#[derive(Debug, Clone)]
struct Schedule {
    kind: TopologyKind,
    nodes: usize,
    cfg: FabricConfig,
    msgs: Vec<Message>,
}

fn schedule(max_nodes: usize) -> impl Strategy<Value = Schedule> {
    (
        any::<bool>(),
        2usize..max_nodes + 1,
        1u64..64,
        0u64..100,
        proptest::collection::vec((any::<u64>(), any::<u64>(), 1u64..5000, 0u64..2000), 1..24),
    )
        .prop_map(|(ring, nodes, bw, latency, raw)| {
            let kind = if ring { TopologyKind::Ring } else { TopologyKind::Line };
            let cfg = FabricConfig {
                topology: kind,
                link_bytes_per_cycle: bw,
                link_latency: latency,
                accum_bytes_per_cycle: bw,
            };
            let msgs = raw
                .into_iter()
                .enumerate()
                .map(|(i, (s, d, bytes, inject))| {
                    let src = (s % nodes as u64) as usize;
                    // Force dst != src so every message crosses the fabric.
                    let dst = (src + 1 + (d % (nodes as u64 - 1)) as usize) % nodes;
                    Message { id: i as u64, src, dst, bytes, inject }
                })
                .collect();
            Schedule { kind, nodes, cfg, msgs }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Conservation: every byte injected is delivered, and each link
    // carries exactly the bytes of the messages routed across it.
    #[test]
    fn bytes_are_conserved(s in schedule(6)) {
        let mut f = FabricState::new(s.cfg, s.nodes);
        let delivered = f.run(&s.msgs);
        prop_assert_eq!(delivered.len(), s.msgs.len());
        let topo = build_topology(s.kind, s.nodes);
        // Expected per-link byte counts from routing alone.
        let mut expect = vec![0u64; topo.n_links()];
        for m in &s.msgs {
            for l in topo.route(m.src, m.dst) {
                expect[l] += m.bytes;
            }
        }
        let stats = f.link_stats();
        for (l, st) in stats.iter().enumerate() {
            prop_assert_eq!(st.bytes, expect[l], "link {} byte count", l);
        }
        let injected: u64 = s.msgs.iter().map(|m| m.bytes).sum();
        let carried: u64 = stats.iter().map(|st| st.bytes).sum();
        let hops: u64 = s.msgs.iter().map(|m| topo.route(m.src, m.dst).len() as u64).sum();
        prop_assert!(carried >= injected, "every message crosses at least one link");
        // Total link-bytes equals Σ bytes × hops — nothing dropped, nothing
        // duplicated beyond the route itself.
        let weighted: u64 = s.msgs.iter()
            .map(|m| m.bytes * topo.route(m.src, m.dst).len() as u64)
            .sum();
        prop_assert_eq!(carried, weighted);
        prop_assert!(hops >= s.msgs.len() as u64);
    }

    // FIFO per-link service: transmissions never overlap, never start
    // before arrival, and are served in arrival order (ties by id).
    #[test]
    fn links_serve_fifo_without_overlap(s in schedule(6)) {
        let mut f = FabricState::new(s.cfg, s.nodes);
        f.run(&s.msgs);
        let bw = s.cfg.link_bytes_per_cycle.max(1);
        let bytes_of = |id: u64| s.msgs[id as usize].bytes;
        let topo = build_topology(s.kind, s.nodes);
        for l in 0..topo.n_links() {
            let log = f.link_log(l);
            let mut prev_finish = 0u64;
            let mut prev_key = (0u64, 0u64);
            for (i, ev) in log.iter().enumerate() {
                prop_assert!(ev.start >= ev.arrival, "no service before arrival");
                prop_assert!(ev.start >= prev_finish, "serializer non-overlap");
                prop_assert_eq!(ev.finish, ev.start + bytes_of(ev.message).div_ceil(bw));
                let key = (ev.arrival, ev.message);
                if i > 0 {
                    prop_assert!(key > prev_key, "FIFO (arrival, id) service order");
                }
                prev_key = key;
                prev_finish = ev.finish;
            }
        }
    }

    // On two nodes the ring's extra counter-clockwise links are dead
    // weight: ring and line produce identical deliveries and identical
    // stats on the links both topologies share.
    #[test]
    fn ring_degenerates_to_line_on_two_nodes(s in schedule(2)) {
        let mut line = FabricState::new(
            FabricConfig { topology: TopologyKind::Line, ..s.cfg }, 2);
        let mut ring = FabricState::new(
            FabricConfig { topology: TopologyKind::Ring, ..s.cfg }, 2);
        let dl = line.run(&s.msgs);
        let dr = ring.run(&s.msgs);
        prop_assert_eq!(dl, dr);
        let ls = line.link_stats();
        let rs = ring.link_stats();
        // Line links {0: 0→1, 1: 1→0} coincide with ring's clockwise pair.
        for l in 0..2 {
            prop_assert_eq!(ls[l], rs[l]);
        }
        // The ring's counter-clockwise links never carry traffic.
        prop_assert!(rs[2..].iter().all(|st| st.messages == 0));
    }

    // Determinism: the outcome is a function of the message *set*.
    // Reversing the input list (a proxy for any parallel enumeration
    // order) changes nothing — per-message deliveries, link statistics,
    // and link logs all match bit-for-bit.
    #[test]
    fn schedule_is_input_order_invariant(s in schedule(6)) {
        let mut fwd = FabricState::new(s.cfg, s.nodes);
        let d_fwd = fwd.run(&s.msgs);
        let rev: Vec<Message> = s.msgs.iter().rev().copied().collect();
        let mut bwd = FabricState::new(s.cfg, s.nodes);
        let d_bwd = bwd.run(&rev);
        let n = s.msgs.len();
        for i in 0..n {
            prop_assert_eq!(d_fwd[i], d_bwd[n - 1 - i], "message {} delivery", i);
        }
        prop_assert_eq!(fwd.link_stats(), bwd.link_stats());
        for l in 0..build_topology(s.kind, s.nodes).n_links() {
            prop_assert_eq!(fwd.link_log(l), bwd.link_log(l));
        }
    }

    // Reduce-to-root: repeat runs are cycle-identical (serial == parallel
    // determinism for the engine's Phase-3 use), the result respects the
    // slowest payload, and shifting all ready times shifts the answer.
    #[test]
    fn reduce_is_deterministic_and_bounded(
        s in schedule(6),
        ready in proptest::collection::vec((0u64..5000, 64u64..100_000), 6),
        root_pick in any::<u64>(),
    ) {
        let payloads: Vec<(u64, u64)> = ready[..s.nodes].to_vec();
        let root = (root_pick % s.nodes as u64) as usize;
        let mut a = FabricState::new(s.cfg, s.nodes);
        let end_a = a.reduce_to_root(&payloads, root);
        let mut b = FabricState::new(s.cfg, s.nodes);
        let end_b = b.reduce_to_root(&payloads, root);
        prop_assert_eq!(end_a, end_b, "reduce cycles must be reproducible");
        prop_assert_eq!(a.link_stats(), b.link_stats());
        // Lower bound: cannot finish before every payload is even ready.
        let slowest = payloads.iter().map(|&(t, _)| t).max().unwrap();
        prop_assert!(end_a >= slowest);
        // Shift invariance: the schedule has no absolute-time anchors.
        let shifted: Vec<(u64, u64)> =
            payloads.iter().map(|&(t, bytes)| (t + 7919, bytes)).collect();
        let mut c = FabricState::new(s.cfg, s.nodes);
        prop_assert_eq!(c.reduce_to_root(&shifted, root), end_a + 7919);
    }
}
